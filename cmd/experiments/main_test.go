package main

import (
	"bytes"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

// TestKillAndResume is the end-to-end crash-safety acceptance test: a
// campaign interrupted by SIGINT and resumed from its journal must produce
// a final JSON report byte-identical to an uninterrupted campaign — even
// after the journal's tail is torn, which must cost only the torn record.
//
// AblCalibration is used because it is the cheapest registered experiment
// with enough harness runs (~50 at quick scale) that a signal fired after
// the first journaled run always interrupts real in-flight work.
func TestKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the experiments binary three times")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "experiments")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building experiments binary: %v\n%s", err, out)
	}
	env := append(os.Environ(), "BERTI_SCALE=quick")
	const expID = "AblCalibration"

	// Reference: the same campaign run start to finish, no journal.
	refJSON := filepath.Join(dir, "reference.json")
	cmd := exec.Command(bin, "-run", expID, "-json-out", refJSON)
	cmd.Env = env
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("uninterrupted campaign failed: %v\n%s", err, out)
	}

	// Interrupted: journal on, SIGINT once at least one run is journaled.
	gotJSON := filepath.Join(dir, "resumed.json")
	journal := filepath.Join(dir, "campaign.journal")
	interrupted := exec.Command(bin, "-run", expID, "-journal", journal, "-json-out", gotJSON)
	interrupted.Env = env
	var conOut bytes.Buffer
	interrupted.Stdout, interrupted.Stderr = &conOut, &conOut
	if err := interrupted.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		// Header is line 1, so two newlines mean one journaled run.
		if data, err := os.ReadFile(journal); err == nil && bytes.Count(data, []byte{'\n'}) >= 2 {
			break
		}
		if time.Now().After(deadline) {
			interrupted.Process.Kill()
			t.Fatalf("no run was journaled within the deadline\n%s", conOut.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := interrupted.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	err := interrupted.Wait()
	var ee *exec.ExitError
	if !errors.As(err, &ee) || ee.ExitCode() != 130 {
		t.Fatalf("interrupted campaign must exit 130, got %v\n%s", err, conOut.String())
	}
	if !bytes.Contains(conOut.Bytes(), []byte("PARTIAL REPORT")) {
		t.Fatalf("interrupted campaign must mark its report partial\n%s", conOut.String())
	}
	if !bytes.Contains(conOut.Bytes(), []byte("-resume")) {
		t.Fatalf("interrupted campaign must print a resume hint\n%s", conOut.String())
	}
	if partial, err := os.ReadFile(gotJSON); err != nil || !bytes.Contains(partial, []byte(`"partial": true`)) {
		t.Fatalf("interrupted -json-out must carry the partial flag (err=%v)", err)
	}

	// Tear the journal tail (a crash mid-append): resume must truncate the
	// damaged record and re-run it, not fail.
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 40 {
		t.Fatalf("journal implausibly small: %d bytes", len(data))
	}
	if err := os.WriteFile(journal, data[:len(data)-20], 0o644); err != nil {
		t.Fatal(err)
	}

	resumed := exec.Command(bin, "-run", expID, "-journal", journal, "-resume", "-json-out", gotJSON)
	resumed.Env = env
	resOut, err := resumed.CombinedOutput()
	if err != nil {
		t.Fatalf("resumed campaign failed: %v\n%s", err, resOut)
	}
	if !bytes.Contains(resOut, []byte("damaged tail")) {
		t.Fatalf("resume must report the truncated record\n%s", resOut)
	}

	want, err := os.ReadFile(refJSON)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(gotJSON)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("resumed report differs from the uninterrupted one (%d vs %d bytes)", len(want), len(got))
	}
}
