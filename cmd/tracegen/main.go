// Command tracegen generates workload traces to disk in the binary trace
// format and inspects existing trace files.
//
// Usage:
//
//	tracegen -workload bfs-kron -records 500000 -o bfs.trace
//	tracegen -inspect bfs.trace
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/bertisim/berti/internal/trace"
	"github.com/bertisim/berti/internal/workloads"
	_ "github.com/bertisim/berti/internal/workloads/cloudlike"
	_ "github.com/bertisim/berti/internal/workloads/gap"
	_ "github.com/bertisim/berti/internal/workloads/speclike"
)

func main() {
	workload := flag.String("workload", "", "workload to generate")
	records := flag.Int("records", 300_000, "memory records to emit")
	seed := flag.Int64("seed", 42, "generation seed")
	out := flag.String("o", "", "output trace file")
	inspect := flag.String("inspect", "", "trace file to summarize")
	flag.Parse()

	switch {
	case *inspect != "":
		f, err := os.Open(*inspect)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tr, err := trace.Decode(f)
		if err != nil {
			fatal(err)
		}
		summarize(tr)
	case *workload != "" && *out != "":
		w, ok := workloads.ByName(*workload)
		if !ok {
			fatal(fmt.Errorf("unknown workload %q", *workload))
		}
		tr := w.Gen(workloads.GenConfig{MemRecords: *records, Seed: *seed})
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := trace.Encode(f, tr); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d records (%d instructions) to %s\n",
			tr.Len(), tr.Instructions(), *out)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func summarize(tr *trace.Slice) {
	loads, stores, deps := 0, 0, 0
	ips := map[uint64]int{}
	pages := map[uint64]bool{}
	for i := range tr.Records {
		r := &tr.Records[i]
		if r.Kind == trace.Load {
			loads++
		} else {
			stores++
		}
		if r.DepDist > 0 {
			deps++
		}
		ips[r.IP]++
		pages[r.Addr>>12] = true
	}
	fmt.Printf("records:       %d (%d loads, %d stores, %d dependent)\n",
		tr.Len(), loads, stores, deps)
	fmt.Printf("instructions:  %d\n", tr.Instructions())
	fmt.Printf("distinct IPs:  %d\n", len(ips))
	fmt.Printf("4K pages:      %d (%.1f MB footprint)\n",
		len(pages), float64(len(pages))*4096/1e6)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
