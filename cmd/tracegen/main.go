// Command tracegen generates workload traces to disk and inspects existing
// trace files. New traces are written in the seekable chunk-compressed v2
// container (internal/tracestore) by default; -format v1 emits the legacy
// flat stream for older tooling. -inspect sniffs the magic and summarizes
// either format.
//
// Usage:
//
//	tracegen -workload bfs-kron -records 500000 -o bfs.btr2
//	tracegen -workload bfs-kron -format v1 -o bfs.trace
//	tracegen -inspect bfs.btr2
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/bertisim/berti/internal/trace"
	"github.com/bertisim/berti/internal/tracestore"
	"github.com/bertisim/berti/internal/workloads"
	_ "github.com/bertisim/berti/internal/workloads/cloudlike"
	_ "github.com/bertisim/berti/internal/workloads/gap"
	_ "github.com/bertisim/berti/internal/workloads/speclike"
)

func main() {
	workload := flag.String("workload", "", "workload to generate")
	records := flag.Int("records", 300_000, "memory records to emit")
	seed := flag.Int64("seed", 42, "generation seed")
	out := flag.String("o", "", "output trace file")
	format := flag.String("format", "v2", "output format: v2 (chunked, compressed, seekable) or v1 (flat stream)")
	chunk := flag.Uint("chunk", 0, "v2 records per chunk (0 = default)")
	inspect := flag.String("inspect", "", "trace file to summarize")
	flag.Parse()

	switch {
	case *inspect != "":
		inspectFile(*inspect)
	case *workload != "" && *out != "":
		w, ok := workloads.ByName(*workload)
		if !ok {
			fatal(fmt.Errorf("unknown workload %q", *workload))
		}
		if *format != "v1" && *format != "v2" {
			fatal(fmt.Errorf("unknown format %q (want v1 or v2)", *format))
		}
		tr := w.Gen(workloads.GenConfig{MemRecords: *records, Seed: *seed})
		n, err := writeTrace(*out, *format, uint32(*chunk), *workload, tr)
		if err != nil {
			// Leave no truncated container behind: a partial trace file
			// decodes as corrupt at best and silently short at worst.
			os.Remove(*out)
			fatal(err)
		}
		fmt.Printf("wrote %d records (%d instructions) to %s (%s, %d bytes)\n",
			tr.Len(), tr.Instructions(), *out, *format, n)
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// countingWriter tracks bytes accepted downstream so failures can report
// how much of the file made it to disk.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	if err == nil && n < len(p) {
		err = io.ErrShortWrite
	}
	return n, err
}

// writeTrace encodes tr to path in the requested format through a fully
// error-checked write path: every byte goes through a buffered writer whose
// Flush, the file's Sync, and Close are all checked, and short writes
// surface as errors with the byte count written so far.
func writeTrace(path, format string, chunkRecords uint32, workload string, tr *trace.Slice) (written int64, err error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	cw := &countingWriter{w: f}
	bw := bufio.NewWriterSize(cw, 1<<20)

	defer func() {
		if cerr := f.Close(); cerr != nil && err == nil {
			err = cerr
		}
		if err != nil {
			err = fmt.Errorf("writing %s (%d bytes written): %w", path, cw.n, err)
		}
	}()

	switch format {
	case "v1":
		err = trace.Encode(bw, tr)
	default:
		err = tracestore.Write(bw, tr, tracestore.Meta{Workload: workload, ChunkRecords: chunkRecords})
	}
	if err != nil {
		return cw.n, err
	}
	if err = bw.Flush(); err != nil {
		return cw.n, err
	}
	if err = f.Sync(); err != nil {
		return cw.n, err
	}
	return cw.n, nil
}

// inspectFile sniffs the container format and prints a summary.
func inspectFile(path string) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	var magic [tracestore.HeadMagicLen]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		fatal(fmt.Errorf("reading %s: %w", path, err))
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		fatal(err)
	}
	if tracestore.IsV2Header(magic[:]) {
		tf, err := tracestore.Open(path)
		if err != nil {
			fatal(err)
		}
		defer tf.Close()
		m := tf.Meta()
		fmt.Printf("format:        v2 container (%d chunks of <=%d records)\n",
			tf.Chunks(), m.ChunkRecords)
		if m.Workload != "" {
			fmt.Printf("workload:      %s\n", m.Workload)
		}
		fmt.Printf("line footprint: %d lines (%.1f MB)\n",
			m.LineFootprint, float64(m.LineFootprint)*64/1e6)
		tr, err := tf.ReadAll()
		if err != nil {
			fatal(err)
		}
		summarize(tr)
		if raw := tr.Len(); raw > 0 {
			fmt.Printf("compressed:    %d bytes (%.2f bytes/record)\n",
				tf.CompressedSize(), float64(tf.CompressedSize())/float64(raw))
		}
		return
	}
	tr, err := trace.Decode(f)
	if err != nil {
		fatal(err)
	}
	fmt.Println("format:        v1 flat stream")
	summarize(tr)
}

func summarize(tr *trace.Slice) {
	loads, stores, deps := 0, 0, 0
	ips := map[uint64]int{}
	pages := map[uint64]bool{}
	for i := range tr.Records {
		r := &tr.Records[i]
		if r.Kind == trace.Load {
			loads++
		} else {
			stores++
		}
		if r.DepDist > 0 {
			deps++
		}
		ips[r.IP]++
		pages[r.Addr>>12] = true
	}
	fmt.Printf("records:       %d (%d loads, %d stores, %d dependent)\n",
		tr.Len(), loads, stores, deps)
	fmt.Printf("instructions:  %d\n", tr.Instructions())
	fmt.Printf("distinct IPs:  %d\n", len(ips))
	fmt.Printf("4K pages:      %d (%.1f MB footprint)\n",
		len(pages), float64(len(pages))*4096/1e6)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
