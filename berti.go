// Package berti is the public API of the Berti reproduction: a trace-driven
// cache-hierarchy simulator with the Berti local-delta L1D prefetcher
// (Navarro-Torres et al., MICRO 2022) and the baseline prefetchers the
// paper evaluates against.
//
// The package exposes three layers:
//
//   - Simulate: run one workload through the simulated memory hierarchy
//     with a chosen prefetcher configuration and get a metrics report.
//   - Workloads / Prefetchers: enumerate the registered synthetic
//     workloads (SPEC CPU2017-, GAP-, and CloudSuite-like) and prefetcher
//     designs.
//   - RunExperiment / Experiments: regenerate the paper's tables and
//     figures.
//
// The underlying subsystems (simulator core, cache model, DRAM model,
// prefetcher implementations, workload generators) live under internal/
// and are documented in DESIGN.md.
package berti

import (
	"fmt"
	"io"

	"github.com/bertisim/berti/internal/energy"
	"github.com/bertisim/berti/internal/harness"
	"github.com/bertisim/berti/internal/prefetch"
	"github.com/bertisim/berti/internal/workloads"
)

// Options configures one simulation.
type Options struct {
	// Workload is a registered workload name (see Workloads).
	Workload string
	// Mix optionally replaces Workload with one workload per core for a
	// multi-core heterogeneous run.
	Mix []string
	// L1DPrefetcher and L2Prefetcher are registered prefetcher names
	// (see Prefetchers); empty disables prefetching at that level.
	// The paper's baseline is "ip-stride" at L1D.
	L1DPrefetcher string
	L2Prefetcher  string
	// DRAM selects the channel: "" or "ddr5-6400" (default),
	// "ddr4-3200", "ddr3-1600".
	DRAM string
	// MemRecords sizes the generated trace (0 = default scale).
	MemRecords int
	// WarmupInstructions and Instructions bound the simulation
	// (0 = default scale).
	WarmupInstructions uint64
	Instructions       uint64
	// Seed perturbs trace generation.
	Seed int64
}

// LevelReport summarizes one cache level.
type LevelReport struct {
	DemandAccesses uint64
	DemandMisses   uint64
	MPKI           float64
	// Prefetch effectiveness (artifact formulas, Section "Notes" of the
	// paper's appendix).
	PrefetchFills    uint64
	PrefetchUseful   uint64
	PrefetchLate     uint64
	PrefetchAccuracy float64
	TimelyFraction   float64
	AvgFillLatency   float64
}

// Report is the outcome of one simulation.
type Report struct {
	// IPC of core 0 (single-core runs) over the measured region.
	IPC float64
	// PerCoreIPC for multi-core runs.
	PerCoreIPC []float64
	L1D        LevelReport
	L2         LevelReport
	LLC        LevelReport
	// DRAMReads/Writes are line transfers at the memory controller.
	DRAMReads, DRAMWrites uint64
	// TrafficL2, TrafficLLC, TrafficDRAM are total line transfers at
	// each boundary (demand + prefetch + writeback).
	TrafficL2, TrafficLLC, TrafficDRAM uint64
	// EnergyPJ is the dynamic memory-hierarchy energy estimate.
	EnergyPJ float64
}

// Simulate runs one simulation and returns its report.
func Simulate(opts Options) (*Report, error) {
	if opts.Workload == "" && len(opts.Mix) == 0 {
		return nil, fmt.Errorf("berti: Options.Workload or Options.Mix required")
	}
	names := append([]string{}, opts.Mix...)
	if opts.Workload != "" {
		names = append(names, opts.Workload)
	}
	for _, n := range names {
		if _, ok := workloads.ByName(n); !ok {
			return nil, fmt.Errorf("berti: unknown workload %q", n)
		}
	}
	for _, p := range []string{opts.L1DPrefetcher, opts.L2Prefetcher} {
		if p != "" {
			if _, ok := prefetch.ByName(p); !ok {
				return nil, fmt.Errorf("berti: unknown prefetcher %q", p)
			}
		}
	}
	switch opts.DRAM {
	case "", "ddr5-6400", "ddr4-3200", "ddr3-1600":
	default:
		return nil, fmt.Errorf("berti: unknown DRAM config %q", opts.DRAM)
	}

	scale := harness.ScaleFromEnv()
	if opts.MemRecords > 0 {
		scale.MemRecords = opts.MemRecords
	}
	if opts.WarmupInstructions > 0 {
		scale.WarmupInstr = opts.WarmupInstructions
	}
	if opts.Instructions > 0 {
		scale.SimInstr = opts.Instructions
	}
	h := harness.New(scale)
	res, err := h.Run(harness.RunSpec{
		Workload: opts.Workload,
		Mix:      opts.Mix,
		L1DPf:    opts.L1DPrefetcher,
		L2Pf:     opts.L2Prefetcher,
		DRAMCfg:  opts.DRAM,
		Seed:     opts.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("berti: simulation failed: %w", err)
	}

	instr := res.Config.SimInstructions
	rep := &Report{IPC: res.IPC()}
	for i := range res.Cores {
		rep.PerCoreIPC = append(rep.PerCoreIPC, res.Cores[i].IPC)
	}
	c := &res.Cores[0]
	rep.L1D = LevelReport{
		DemandAccesses: c.L1D.DemandAccesses, DemandMisses: c.L1D.DemandMisses,
		MPKI:          c.L1D.MPKI(instr),
		PrefetchFills: c.L1D.PrefFills, PrefetchUseful: c.L1D.PrefUseful,
		PrefetchLate: c.L1D.PrefLate, PrefetchAccuracy: c.L1D.Accuracy(),
		TimelyFraction: c.L1D.TimelyFraction(), AvgFillLatency: c.L1D.AvgFillLatency(),
	}
	rep.L2 = LevelReport{
		DemandAccesses: c.L2.DemandAccesses, DemandMisses: c.L2.DemandMisses,
		MPKI:          c.L2.MPKI(instr),
		PrefetchFills: c.L2.PrefFills, PrefetchUseful: c.L2.PrefUseful,
		PrefetchLate: c.L2.PrefLate, PrefetchAccuracy: c.L2.Accuracy(),
		TimelyFraction: c.L2.TimelyFraction(), AvgFillLatency: c.L2.AvgFillLatency(),
	}
	rep.LLC = LevelReport{
		DemandAccesses: res.LLC.DemandAccesses, DemandMisses: res.LLC.DemandMisses,
		MPKI:          res.LLC.MPKI(instr),
		PrefetchFills: res.LLC.PrefFills, PrefetchUseful: res.LLC.PrefUseful,
		PrefetchLate: res.LLC.PrefLate, PrefetchAccuracy: res.LLC.Accuracy(),
		TimelyFraction: res.LLC.TimelyFraction(), AvgFillLatency: res.LLC.AvgFillLatency(),
	}
	rep.DRAMReads, rep.DRAMWrites = res.DRAM.Reads, res.DRAM.Writes
	tr := res.Traffic()
	rep.TrafficL2, rep.TrafficLLC, rep.TrafficDRAM = tr.Total()
	rep.EnergyPJ = energy.Compute(energy.Default22nm(), res).Total()
	return rep, nil
}

// WorkloadInfo describes one registered workload.
type WorkloadInfo struct {
	Name         string
	Suite        string // "spec", "gap", "cloud"
	MemIntensive bool
}

// Workloads lists the registered synthetic workloads.
func Workloads() []WorkloadInfo {
	var out []WorkloadInfo
	for _, w := range workloads.All() {
		out = append(out, WorkloadInfo{Name: w.Name, Suite: w.Suite, MemIntensive: w.MemIntensive})
	}
	return out
}

// PrefetcherInfo describes one registered prefetcher design.
type PrefetcherInfo struct {
	Name string
	// Level is "L1D" or "L2".
	Level string
	// StorageKB is the declared hardware budget.
	StorageKB float64
	Comment   string
}

// Prefetchers lists the registered prefetcher designs.
func Prefetchers() []PrefetcherInfo {
	var out []PrefetcherInfo
	for _, e := range prefetch.All() {
		level := "L1D"
		if e.Level == prefetch.AtL2 {
			level = "L2"
		}
		out = append(out, PrefetcherInfo{
			Name:      e.Name,
			Level:     level,
			StorageKB: float64(e.New().StorageBits()) / 8 / 1024,
			Comment:   e.Comment,
		})
	}
	return out
}

// ExperimentInfo describes one reproducible paper artifact.
type ExperimentInfo struct {
	ID    string
	Paper string
	Desc  string
}

// Experiments lists the paper's tables and figures this repository
// regenerates, in presentation order.
func Experiments() []ExperimentInfo {
	var out []ExperimentInfo
	for _, e := range harness.Experiments() {
		out = append(out, ExperimentInfo{ID: e.ID, Paper: e.Paper, Desc: e.Desc})
	}
	return out
}

// RunExperiment regenerates one table or figure, writing the report to w.
// scale is "quick", "default", or "full" ("" = default, honoring
// $BERTI_SCALE).
func RunExperiment(id string, w io.Writer, scale string) error {
	e, ok := harness.ExperimentByID(id)
	if !ok {
		return fmt.Errorf("berti: unknown experiment %q", id)
	}
	var s harness.Scale
	switch scale {
	case "quick":
		s = harness.ScaleQuick
	case "default":
		s = harness.ScaleDefault
	case "full":
		s = harness.ScaleFull
	case "":
		s = harness.ScaleFromEnv()
	default:
		return fmt.Errorf("berti: unknown scale %q", scale)
	}
	h := harness.New(s)
	e.Run(h, w)
	if fails := h.Failures(); len(fails) > 0 {
		// The report was still rendered from the surviving runs; surface
		// the failures so callers do not mistake it for a clean artifact.
		return fmt.Errorf("berti: experiment %s finished with %d failed run(s): %w",
			id, len(fails), fails[0])
	}
	return nil
}
