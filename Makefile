# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test test-short bench bench-engine bench-cache bench-gate experiments vet fmt loc

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

fmt:
	gofmt -l .

test:
	go test ./...

test-short:
	go test -short ./...

# One iteration of every benchmark (each regenerates a paper table/figure).
bench:
	go test -bench=. -benchmem -benchtime=1x ./...

# Engine throughput: ticked vs event-horizon scheduler -> BENCH_engine.json
# (kinstr/s per workload x prefetcher x scheduler, with speedup ratios).
bench-engine:
	go run ./cmd/benchengine -o BENCH_engine.json

# Hot-path micro-benchmarks: per-cycle cache pipeline cost and per-access
# prefetcher train/issue cost, with allocation counts (want 0 allocs/op).
bench-cache:
	go test -run '^$$' -bench 'BenchmarkCacheTick|BenchmarkPrefetchTrain' -benchmem \
		./internal/cache/ ./internal/prefetch/all/

# Regression gate: re-measure the engine matrix and fail if any cell is
# >10% slower than the newest committed BENCH_engine.json entry. Read-only:
# the trajectory file is not touched. Extra reps (best-of-5) damp scheduler
# noise; kinstr/s is machine-dependent, so refresh the trajectory with
# `make bench-engine` when the reference hardware changes.
bench-gate:
	go run ./cmd/benchengine -o BENCH_engine.json -gate -reps 5

# Regenerate the paper's full evaluation (BERTI_SCALE=quick|default|full).
experiments:
	go run ./cmd/experiments -all

loc:
	@find . -name '*.go' | xargs wc -l | tail -1
