# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test test-short bench bench-engine experiments vet fmt loc

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

fmt:
	gofmt -l .

test:
	go test ./...

test-short:
	go test -short ./...

# One iteration of every benchmark (each regenerates a paper table/figure).
bench:
	go test -bench=. -benchmem -benchtime=1x ./...

# Engine throughput: ticked vs event-horizon scheduler -> BENCH_engine.json
# (kinstr/s per workload x prefetcher x scheduler, with speedup ratios).
bench-engine:
	go run ./cmd/benchengine -o BENCH_engine.json

# Regenerate the paper's full evaluation (BERTI_SCALE=quick|default|full).
experiments:
	go run ./cmd/experiments -all

loc:
	@find . -name '*.go' | xargs wc -l | tail -1
