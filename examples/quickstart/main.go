// Quickstart: simulate one workload with and without Berti and print the
// headline numbers. This is the smallest useful program against the public
// API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/bertisim/berti"
)

func main() {
	const workload = "mcf_like_1554" // pointer-chasing, Berti's best case

	baseline, err := berti.Simulate(berti.Options{
		Workload:      workload,
		L1DPrefetcher: "ip-stride", // the paper's baseline
	})
	if err != nil {
		log.Fatal(err)
	}
	withBerti, err := berti.Simulate(berti.Options{
		Workload:      workload,
		L1DPrefetcher: "berti",
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s\n", workload)
	fmt.Printf("  IP-stride baseline: IPC %.3f, L1D MPKI %.1f\n",
		baseline.IPC, baseline.L1D.MPKI)
	fmt.Printf("  Berti:              IPC %.3f, L1D MPKI %.1f\n",
		withBerti.IPC, withBerti.L1D.MPKI)
	fmt.Printf("  speedup:            %.2fx\n", withBerti.IPC/baseline.IPC)
	fmt.Printf("  Berti accuracy:     %.1f%% (%.1f%% of useful prefetches timely)\n",
		100*withBerti.L1D.PrefetchAccuracy, 100*withBerti.L1D.TimelyFraction)
	fmt.Printf("  DRAM traffic:       %d -> %d lines\n",
		baseline.TrafficDRAM, withBerti.TrafficDRAM)
}
