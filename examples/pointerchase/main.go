// pointerchase: the paper's Figure 2/3 narrative as a runnable program.
// It feeds Berti the access stream of interleaved pointer chases with
// per-IP delta patterns (including the mcf -1,-5,-2,-1,-4,-1 sequence from
// Section II-B), then dumps the per-IP deltas Berti learned and contrasts
// them with BOP's single global offset.
//
//	go run ./examples/pointerchase
package main

import (
	"fmt"

	"github.com/bertisim/berti/internal/cache"
	"github.com/bertisim/berti/internal/core"
	"github.com/bertisim/berti/internal/prefetch/bop"
)

// chaser replays a repeating local-delta sequence for one IP.
type chaser struct {
	ip    uint64
	line  uint64
	seq   []int64
	pos   int
	label string
}

func (c *chaser) next() uint64 {
	c.line = uint64(int64(c.line) + c.seq[c.pos])
	c.pos = (c.pos + 1) % len(c.seq)
	return c.line
}

func main() {
	chasers := []*chaser{
		{ip: 0x401cb0, line: 1 << 22, seq: []int64{1, 2}, label: "lbm-style +1/+2"},
		{ip: 0x402dc7, line: 2 << 22, seq: []int64{-1, -5, -2, -1, -4, -1}, label: "mcf-style irregular"},
		{ip: 0x403f15, line: 3 << 22, seq: []int64{7}, label: "constant stride +7"},
	}

	berti := core.New(core.DefaultConfig())
	bopPf := bop.New(bop.DefaultConfig())

	// Feed both prefetchers the interleaved miss stream with a 300-cycle
	// fetch latency and ~40 cycles between accesses.
	const latency = 300
	cycle := uint64(0)
	for round := 0; round < 3000; round++ {
		for _, c := range chasers {
			line := c.next()
			ev := cache.AccessEvent{IP: c.ip, LineAddr: line, Cycle: cycle, Hit: false}
			berti.OnAccess(ev)
			bopPf.OnAccess(ev)
			fill := cache.FillEvent{IP: c.ip, LineAddr: line, Cycle: cycle + latency, Latency: latency}
			berti.OnFill(fill)
			bopPf.OnFill(fill)
			cycle += 40
		}
	}

	fmt.Println("What Berti learned, per IP (delta[status]):")
	for _, c := range chasers {
		fmt.Printf("  %-22s IP 0x%x: ", c.label, c.ip)
		ds := berti.SnapshotDeltas(c.ip)
		if len(ds) == 0 {
			fmt.Println("(nothing)")
			continue
		}
		for _, d := range ds {
			fmt.Printf("%+d[%s] ", d.Delta, d.Status)
		}
		fmt.Println()
	}
	fmt.Printf("\nWhat BOP learned: one global offset = %+d\n\n", bopPf.BestOffset())
	fmt.Println("The paper's point (Fig. 3): each IP has its own timely deltas — e.g. the")
	fmt.Println("+1/+2 alternation is covered by local deltas +3/+6/+9 at 100% coverage —")
	fmt.Println("while a single global offset cannot serve all three streams at once.")
}
