// graphanalytics: build a real graph, run the GAP-style benchmarks over it,
// and compare how Berti and IPCP cope with the resulting access streams —
// the paper's Section IV-C GAP analysis in miniature. This example uses the
// in-repo packages directly (graph construction, trace generation, and the
// simulator) rather than the high-level façade.
//
//	go run ./examples/graphanalytics
package main

import (
	"fmt"

	"github.com/bertisim/berti/internal/cache"
	"github.com/bertisim/berti/internal/core"
	"github.com/bertisim/berti/internal/prefetch/ipcp"
	"github.com/bertisim/berti/internal/prefetch/ipstride"
	"github.com/bertisim/berti/internal/sim"
	"github.com/bertisim/berti/internal/trace"
	"github.com/bertisim/berti/internal/workloads"
	"github.com/bertisim/berti/internal/workloads/gap"
	_ "github.com/bertisim/berti/internal/workloads/gap" // register workloads
)

func main() {
	// Peek at the graph topology the generators use.
	g := gap.Kronecker(14, 16, 1)
	maxDeg := 0
	for v := 0; v < g.N; v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	fmt.Printf("Kronecker graph: %d vertices, %d directed edges, max degree %d\n\n",
		g.N, len(g.Edges), maxDeg)

	cfg := sim.DefaultConfig()
	cfg.WarmupInstructions = 150_000
	cfg.SimInstructions = 400_000

	run := func(workload string, pf sim.PrefetcherFactory) *sim.Result {
		w, ok := workloads.ByName(workload)
		if !ok {
			panic(workload)
		}
		tr := w.Gen(workloads.GenConfig{MemRecords: 200_000, Seed: 42})
		m := sim.MustNew(cfg, []trace.Reader{trace.NewLoopReader(tr)}, pf, nil)
		return sim.MustRun(m)
	}

	fmt.Printf("%-12s %10s %10s %10s %10s\n", "kernel", "ip-stride", "ipcp", "berti", "berti-acc")
	for _, kernel := range []string{"bfs-kron", "pr-kron", "sssp-kron", "cc-kron", "bc-kron"} {
		base := run(kernel, func() cache.Prefetcher { return ipstride.New(ipstride.DefaultConfig()) })
		withIPCP := run(kernel, func() cache.Prefetcher { return ipcp.New(ipcp.DefaultConfig()) })
		withBerti := run(kernel, func() cache.Prefetcher { return core.New(core.DefaultConfig()) })
		fmt.Printf("%-12s %9.3f %9.2fx %9.2fx %9.1f%%\n",
			kernel, base.IPC(),
			withIPCP.IPC()/base.IPC(), withBerti.IPC()/base.IPC(),
			100*withBerti.Cores[0].L1D.Accuracy())
	}
	fmt.Println("\nspeedups are relative to the IP-stride baseline; the paper's GAP")
	fmt.Println("result is that only Berti consistently improves on it")
}
