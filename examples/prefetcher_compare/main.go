// prefetcher_compare: a full L1D prefetcher shootout on one workload —
// speedup over the IP-stride baseline, accuracy, timeliness, traffic, and
// energy, like one column of the paper's Figures 8/10/14/15.
//
//	go run ./examples/prefetcher_compare [workload]
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/bertisim/berti"
)

func main() {
	workload := "bfs-kron"
	if len(os.Args) > 1 {
		workload = os.Args[1]
	}

	base, err := berti.Simulate(berti.Options{Workload: workload, L1DPrefetcher: "ip-stride"})
	if err != nil {
		log.Fatal(err)
	}
	noPf, err := berti.Simulate(berti.Options{Workload: workload})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("L1D prefetcher comparison on %s (baseline: ip-stride, IPC %.3f)\n\n", workload, base.IPC)
	fmt.Printf("%-12s %8s %8s %8s %8s %10s %8s\n",
		"prefetcher", "IPC", "speedup", "accuracy", "timely", "L1D-MPKI", "energy")
	for _, pf := range []string{"", "ip-stride", "bop", "mlop", "ipcp", "berti"} {
		rep, err := berti.Simulate(berti.Options{Workload: workload, L1DPrefetcher: pf})
		if err != nil {
			log.Fatal(err)
		}
		name := pf
		if name == "" {
			name = "(none)"
		}
		fmt.Printf("%-12s %8.3f %7.2fx %7.1f%% %7.1f%% %10.1f %7.2fx\n",
			name, rep.IPC, rep.IPC/base.IPC,
			100*rep.L1D.PrefetchAccuracy, 100*rep.L1D.TimelyFraction,
			rep.L1D.MPKI, rep.EnergyPJ/noPf.EnergyPJ)
	}
	fmt.Println("\nenergy is dynamic memory-hierarchy energy normalized to no prefetching")
}
