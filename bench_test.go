// Package berti_test hosts the repository's benchmark targets: one
// macro-benchmark per table and figure of the paper (regenerating it via
// the experiment harness) plus micro-benchmarks of the core structures.
//
// The macro-benchmarks share one memoized harness, so the first iteration
// of each benchmark performs the real simulations and later iterations
// only re-aggregate; run with -benchtime=1x for pure regeneration timing.
// Experiment tables are printed with -v via b.Log.
//
// Scale defaults to "quick" for benchmarks; override with BERTI_SCALE.
package berti_test

import (
	"bytes"
	"os"
	"sync"
	"testing"

	"github.com/bertisim/berti/internal/cache"
	"github.com/bertisim/berti/internal/core"
	"github.com/bertisim/berti/internal/harness"
	"github.com/bertisim/berti/internal/sim"
	"github.com/bertisim/berti/internal/trace"
	"github.com/bertisim/berti/internal/workloads"
)

var (
	benchH    *harness.Harness
	benchOnce sync.Once
)

func benchHarness() *harness.Harness {
	benchOnce.Do(func() {
		scale := harness.ScaleQuick
		if os.Getenv("BERTI_SCALE") != "" {
			scale = harness.ScaleFromEnv()
		}
		benchH = harness.New(scale)
	})
	return benchH
}

// benchExperiment regenerates one paper table/figure per iteration.
func benchExperiment(b *testing.B, id string) {
	e, ok := harness.ExperimentByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	h := benchHarness()
	var out bytes.Buffer
	for i := 0; i < b.N; i++ {
		out.Reset()
		e.Run(h, &out)
	}
	if out.Len() == 0 {
		b.Fatal("experiment produced no output")
	}
	b.Log("\n" + out.String())
}

// One benchmark per evaluation artifact (see DESIGN.md §4).

func BenchmarkFig1Accuracy(b *testing.B)            { benchExperiment(b, "Fig1Accuracy") }
func BenchmarkFig1Energy(b *testing.B)              { benchExperiment(b, "Fig1Energy") }
func BenchmarkFig3LocalVsGlobal(b *testing.B)       { benchExperiment(b, "Fig3LocalVsGlobal") }
func BenchmarkTab1Storage(b *testing.B)             { benchExperiment(b, "Tab1Storage") }
func BenchmarkTab2Config(b *testing.B)              { benchExperiment(b, "Tab2Config") }
func BenchmarkTab3PrefConfig(b *testing.B)          { benchExperiment(b, "Tab3PrefConfig") }
func BenchmarkFig7SpeedupVsStorage(b *testing.B)    { benchExperiment(b, "Fig7SpeedupVsStorage") }
func BenchmarkFig8L1DSpeedup(b *testing.B)          { benchExperiment(b, "Fig8L1DSpeedup") }
func BenchmarkFig9PerTrace(b *testing.B)            { benchExperiment(b, "Fig9PerTrace") }
func BenchmarkFig10AccuracyTimeliness(b *testing.B) { benchExperiment(b, "Fig10AccuracyTimeliness") }
func BenchmarkFig11MPKI(b *testing.B)               { benchExperiment(b, "Fig11MPKI") }
func BenchmarkFig12MultiLevel(b *testing.B)         { benchExperiment(b, "Fig12MultiLevel") }
func BenchmarkFig13MultiLevelMPKI(b *testing.B)     { benchExperiment(b, "Fig13MultiLevelMPKI") }
func BenchmarkFig14Traffic(b *testing.B)            { benchExperiment(b, "Fig14Traffic") }
func BenchmarkFig15Energy(b *testing.B)             { benchExperiment(b, "Fig15Energy") }
func BenchmarkFig16BandwidthL1D(b *testing.B)       { benchExperiment(b, "Fig16BandwidthL1D") }
func BenchmarkFig17BandwidthML(b *testing.B)        { benchExperiment(b, "Fig17BandwidthML") }
func BenchmarkFig18CloudSuite(b *testing.B)         { benchExperiment(b, "Fig18CloudSuite") }
func BenchmarkFig19MISB(b *testing.B)               { benchExperiment(b, "Fig19MISB") }
func BenchmarkFig20MultiCore(b *testing.B)          { benchExperiment(b, "Fig20MultiCore") }
func BenchmarkFig21Watermarks(b *testing.B)         { benchExperiment(b, "Fig21Watermarks") }
func BenchmarkFig22TableSizes(b *testing.B)         { benchExperiment(b, "Fig22TableSizes") }
func BenchmarkAblLatencyBits(b *testing.B)          { benchExperiment(b, "AblLatencyBits") }
func BenchmarkAblCrossPage(b *testing.B)            { benchExperiment(b, "AblCrossPage") }
func BenchmarkAblIdealL1D(b *testing.B)             { benchExperiment(b, "AblIdealL1D") }
func BenchmarkAblCalibration(b *testing.B)          { benchExperiment(b, "AblCalibration") }
func BenchmarkAblPythia(b *testing.B)               { benchExperiment(b, "AblPythia") }
func BenchmarkAblPerIP(b *testing.B)                { benchExperiment(b, "AblPerIP") }

// Micro-benchmarks.

// BenchmarkBertiOnAccess measures the prefetcher's per-access cost (the
// hardware-critical-path analogue: table lookup + prediction).
func BenchmarkBertiOnAccess(b *testing.B) {
	p := core.New(core.DefaultConfig())
	// Warm the tables with a stride pattern.
	for i := uint64(0); i < 1024; i++ {
		p.OnAccess(cache.AccessEvent{IP: 0x400040, LineAddr: 1000 + 4*i, Cycle: 100 * i, Hit: false})
		p.OnFill(cache.FillEvent{IP: 0x400040, LineAddr: 1000 + 4*i, Cycle: 100*i + 300, Latency: 300})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.OnAccess(cache.AccessEvent{
			IP: 0x400040, LineAddr: 1000 + 4*uint64(i), Cycle: uint64(i) * 30,
			Hit: true, MSHRCap: 16,
		})
	}
}

// BenchmarkBertiTrainingSearch measures the timely-delta history search.
func BenchmarkBertiTrainingSearch(b *testing.B) {
	p := core.New(core.DefaultConfig())
	for i := uint64(0); i < 128; i++ {
		p.OnAccess(cache.AccessEvent{IP: 0x400040, LineAddr: 1000 + 4*i, Cycle: 100 * i, Hit: false})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.OnFill(cache.FillEvent{
			IP: 0x400040, LineAddr: 1000 + 4*uint64(i%1024),
			Cycle: uint64(i) * 100, Latency: 280,
		})
	}
}

// BenchmarkSimulatorThroughput reports simulated cycles per wall second.
func BenchmarkSimulatorThroughput(b *testing.B) {
	w, _ := workloads.ByName("roms_like")
	tr := w.Gen(workloads.GenConfig{MemRecords: 50_000, Seed: 1})
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig()
		cfg.WarmupInstructions = 10_000
		cfg.SimInstructions = 100_000
		res := sim.MustRunOnce(cfg, tr, func() cache.Prefetcher { return core.New(core.DefaultConfig()) }, nil)
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "cycles/s")
}

// BenchmarkTraceGeneration measures workload generator throughput.
func BenchmarkTraceGeneration(b *testing.B) {
	w, _ := workloads.ByName("mcf_like_1554")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := w.Gen(workloads.GenConfig{MemRecords: 100_000, Seed: int64(i)})
		if tr.Len() == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkTraceEncode measures the binary codec.
func BenchmarkTraceEncode(b *testing.B) {
	w, _ := workloads.ByName("bfs-kron")
	tr := w.Gen(workloads.GenConfig{MemRecords: 100_000, Seed: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := trace.Encode(&buf, tr); err != nil {
			b.Fatal(err)
		}
	}
}
