package berti_test

import (
	"bytes"
	"strings"
	"testing"

	"github.com/bertisim/berti"
)

func TestSimulateValidation(t *testing.T) {
	if _, err := berti.Simulate(berti.Options{}); err == nil {
		t.Fatal("missing workload must error")
	}
	if _, err := berti.Simulate(berti.Options{Workload: "nope"}); err == nil {
		t.Fatal("unknown workload must error")
	}
	if _, err := berti.Simulate(berti.Options{Workload: "roms_like", L1DPrefetcher: "nope"}); err == nil {
		t.Fatal("unknown prefetcher must error")
	}
	if _, err := berti.Simulate(berti.Options{Workload: "roms_like", DRAM: "ddr9"}); err == nil {
		t.Fatal("unknown DRAM config must error")
	}
}

func TestSimulateSmallRun(t *testing.T) {
	rep, err := berti.Simulate(berti.Options{
		Workload:           "roms_like",
		L1DPrefetcher:      "berti",
		MemRecords:         30_000,
		WarmupInstructions: 20_000,
		Instructions:       60_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.IPC <= 0 || rep.IPC > 6 {
		t.Fatalf("implausible IPC %f", rep.IPC)
	}
	if rep.L1D.DemandAccesses == 0 || rep.TrafficDRAM == 0 || rep.EnergyPJ <= 0 {
		t.Fatalf("report incomplete: %+v", rep)
	}
	if len(rep.PerCoreIPC) != 1 {
		t.Fatalf("per-core IPC wrong: %v", rep.PerCoreIPC)
	}
}

func TestWorkloadsAndPrefetchersEnumerate(t *testing.T) {
	ws := berti.Workloads()
	if len(ws) < 25 {
		t.Fatalf("too few workloads: %d", len(ws))
	}
	ps := berti.Prefetchers()
	foundBerti := false
	for _, p := range ps {
		if p.Name == "berti" {
			foundBerti = true
			if p.StorageKB < 2.5 || p.StorageKB > 2.6 {
				t.Fatalf("Berti storage %f KB", p.StorageKB)
			}
		}
	}
	if !foundBerti {
		t.Fatal("berti not registered")
	}
}

func TestRunExperimentTable(t *testing.T) {
	var buf bytes.Buffer
	if err := berti.RunExperiment("Tab1Storage", &buf, "quick"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "2.55") {
		t.Fatalf("Table I output wrong:\n%s", buf.String())
	}
	if err := berti.RunExperiment("nope", &buf, ""); err == nil {
		t.Fatal("unknown experiment must error")
	}
	if err := berti.RunExperiment("Tab1Storage", &buf, "huge"); err == nil {
		t.Fatal("unknown scale must error")
	}
	if len(berti.Experiments()) < 24 {
		t.Fatalf("experiment list too short: %d", len(berti.Experiments()))
	}
}
