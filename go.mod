module github.com/bertisim/berti

go 1.22
